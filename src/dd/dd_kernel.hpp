#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace pnenc::dd {

/// Shared decision-diagram kernel: the mechanism half of BddManager and
/// ZddManager, factored out so the two engines are one implementation of
///
///  * the flat u32 node arena (ids stable for the lifetime of a referenced
///    node, across GC and reordering) with the free-list and the
///    set_node_limit overflow guard,
///  * per-variable unique subtables (hash chains, kNil-terminated),
///  * the lossy direct-mapped computed-op cache with hit/lookup counters,
///  * reference-counted garbage collection (deref cascade + full sweep),
///  * the slot-namespaced client memo (exact, GC- and reorder-safe),
///  * variable levels (var2level/level2var), adjacent-level swaps, Rudell
///    sifting, explicit order installation and reorder-on-growth,
///  * the checked raw-table make_node used by the snapshot loader.
///
/// The policy half — what makes a diagram a BDD or a ZDD — is supplied by
/// the derived class (CRTP) through four hooks, which it befriends to the
/// kernel:
///
///   static constexpr const char* kName;         // "BddManager" / ...
///   static constexpr const char* kDiagramName;  // "BDD" / "ZDD"
///   // The reduction rule of mk(): true and sets `out` when ⟨var,low,high⟩
///   // must not become a node (BDD: low == high → low; ZDD zero-suppression:
///   // high == ∅ → low).
///   static bool mk_reduce(std::uint32_t var, std::uint32_t low,
///                         std::uint32_t high, std::uint32_t& out);
///   // Cofactor-by-absence for swap_levels: the "child tests w = true"
///   // branch of a child that does NOT test w (BDD: the child itself; ZDD:
///   // ∅, since no set below it contains w).
///   static std::uint32_t swap_absent_high(std::uint32_t child);
///
/// Everything else — the recursive operators, handle types, and the public
/// vocabulary (bdd_and vs zdd_union) — stays in the derived class; the
/// kernel never calls back into operator semantics. Terminal nodes occupy
/// ids 0 and 1 in both instantiations and are created by the kernel
/// constructor.
///
/// Thread-safety: none, by design — one thread per manager, exactly as
/// before the extraction. Cross-thread transfer goes through the derived
/// import_* into the receiving thread's manager, which only READS the source
/// arena via the const raw accessors here.
template <class Derived>
class DdKernel {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  DdKernel(const DdKernel&) = delete;
  DdKernel& operator=(const DdKernel&) = delete;

  // ---- variables ---------------------------------------------------------
  /// Adds a fresh variable at the bottom of the order; returns its id.
  int new_var() {
    int v = static_cast<int>(var2level_.size());
    var2level_.push_back(v);
    level2var_.push_back(v);
    subtables_.emplace_back();
    subtables_.back().buckets.assign(16, kNil);
    return v;
  }
  [[nodiscard]] int num_vars() const {
    return static_cast<int>(var2level_.size());
  }
  [[nodiscard]] int level_of_var(int var) const { return var2level_[var]; }
  [[nodiscard]] int var_at_level(int level) const { return level2var_[level]; }

  // ---- arena accounting --------------------------------------------------
  [[nodiscard]] std::size_t live_node_count() const { return live_nodes_; }
  [[nodiscard]] std::size_t peak_node_count() const { return peak_nodes_; }

  /// Caps the node arena at `max_nodes` slots (terminals included); an
  /// allocation that would grow the arena past the cap throws
  /// std::length_error. The throw happens before any node state is touched
  /// and the recursive operators unwind cleanly, so existing handles stay
  /// valid and the manager remains usable (nodes completed earlier in the
  /// failed operation are unreferenced and reclaimed by the next gc()).
  /// The cap is clamped to the hard arena bound of 2^32−1: id 0xFFFFFFFF is
  /// kNil, so the arena must never hand it out as a real node id. Defaults
  /// to that hard bound; tests inject a small cap to exercise the guard,
  /// and the query layer's sharding exists to split workloads that hit it.
  void set_node_limit(std::size_t max_nodes) {
    node_limit_ = std::min<std::size_t>(max_nodes, kNil);
  }
  [[nodiscard]] std::size_t node_limit() const { return node_limit_; }
  /// Current arena size in slots (live + freed nodes + the 2 terminals) —
  /// the quantity set_node_limit caps.
  [[nodiscard]] std::size_t arena_size() const { return nodes_.size(); }

  // ---- garbage collection & cache ---------------------------------------
  /// Collects all unreferenced nodes. Must not be called while an operation
  /// is in flight (asserted).
  void gc() {
    assert(op_depth_ == 0 && "GC must not run during an operation");
    gc_runs_++;
    // Sweep: nodes with zero references are dead; removing one may kill its
    // children, so iterate with a worklist seeded by every currently-dead
    // node.
    std::vector<std::uint32_t> dead;
    for (std::uint32_t id = 2; id < nodes_.size(); ++id) {
      const Node& n = nodes_[id];
      if (n.var != kVarTerminal && n.ref == 0) dead.push_back(id);
    }
    for (std::uint32_t id : dead) {
      // May already have been freed as a child cascade; detect via var field.
      if (nodes_[id].var == kVarTerminal) continue;
      if (nodes_[id].ref != 0) continue;
      Node& n = nodes_[id];
      std::uint32_t low = n.low, high = n.high;
      subtable_remove(n.var, id);
      free_node(id);
      deref_recursive(low);
      deref_recursive(high);
    }
    cache_clear();
  }

  /// Invalidates every computed-cache entry (the unique table is untouched,
  /// so canonicity is preserved). Used by benchmarks to measure cold-cache
  /// operation cost; results stay correct either way.
  void clear_op_cache() {
    assert(op_depth_ == 0);
    cache_clear();
  }

  [[nodiscard]] std::uint64_t cache_lookups() const { return cache_lookups_; }
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t gc_runs() const { return gc_runs_; }
  [[nodiscard]] std::uint64_t reorder_runs() const { return reorder_runs_; }

  // ---- dynamic reordering ------------------------------------------------
  /// Runs one full sifting pass over all variables. Preserves the function
  /// of every live handle. Returns the node count after reordering.
  std::size_t reorder_sift() {
    assert(op_depth_ == 0);
    reorder_runs_++;
    // Dead nodes distort the size signal sifting optimizes; collect first.
    gc();
    // Sift variables in decreasing order of subtable population — the
    // standard heuristic: fat levels first.
    std::vector<int> order(num_vars());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return subtables_[a].count > subtables_[b].count;
    });
    for (int v : order) {
      if (subtables_[v].count > 0) sift_var(v);
    }
    // Node ids were freed/reallocated during the swaps; drop the op cache so
    // no stale entry can alias a recycled id.
    cache_clear();
    return live_nodes_;
  }

  /// Installs an explicit variable order: `level2var[l]` is the variable to
  /// place at level l (must be a permutation of 0..num_vars-1). Implemented
  /// as a sequence of adjacent-level swaps, so it preserves the function and
  /// identity of every live handle, like reorder_sift. Returns the node
  /// count afterwards. Also how sharded workers inherit a planner's order
  /// before a structural import.
  std::size_t set_var_order(const std::vector<int>& level2var) {
    assert(op_depth_ == 0);
    const int n = num_vars();
    assert(static_cast<int>(level2var.size()) == n);
#ifndef NDEBUG
    {
      std::vector<char> seen(static_cast<std::size_t>(n), 0);
      for (int v : level2var) {
        assert(v >= 0 && v < n && !seen[v] &&
               "level2var must be a permutation");
        seen[v] = 1;
      }
    }
#endif
    gc();  // don't pay swap costs for dead nodes
    // Selection by adjacent swaps: bubble each target variable up to its
    // level, left to right. Everything already placed stays put.
    for (int target = 0; target < n; ++target) {
      int p = var2level_[level2var[target]];
      assert(p >= target);
      while (p > target) {
        swap_levels(p - 1);
        --p;
      }
    }
    cache_clear();
    return live_nodes_;
  }

  /// Enables reorder-on-growth: reorder_sift() runs inside maybe_reorder()
  /// whenever live nodes exceed the threshold (which then doubles).
  void set_auto_reorder(std::size_t first_threshold) {
    reorder_threshold_ = first_threshold;
  }
  /// Current auto-reorder trigger (0 = disabled). Worker managers spawned
  /// for parallel saturation inherit this so their growth policy matches
  /// the parent manager's.
  [[nodiscard]] std::size_t auto_reorder_threshold() const {
    return reorder_threshold_;
  }

  // ---- maintenance fence -------------------------------------------------
  //
  // While other threads hold raw-node views into this arena (the concurrent
  // import_* reads used by query sharding and parallel saturation), GC and
  // sifting must not move or free nodes. The fence makes maybe_reorder() a
  // no-op for its duration; deferred maintenance simply happens at the next
  // unfenced tick, since the thresholds are unchanged. Fencing is counted so
  // nested phases compose. The fence is set and cleared by the coordinating
  // thread only — it is not itself a synchronization primitive.

  void fence_maintenance() { ++maintenance_fence_; }
  void unfence_maintenance() {
    assert(maintenance_fence_ > 0);
    --maintenance_fence_;
  }
  [[nodiscard]] bool maintenance_fenced() const {
    return maintenance_fence_ > 0;
  }
  /// RAII helper: fences `m` for the current scope.
  class MaintenanceFence {
   public:
    explicit MaintenanceFence(DdKernel& k) : k_(k) { k_.fence_maintenance(); }
    ~MaintenanceFence() { k_.unfence_maintenance(); }
    MaintenanceFence(const MaintenanceFence&) = delete;
    MaintenanceFence& operator=(const MaintenanceFence&) = delete;

   private:
    DdKernel& k_;
  };

  /// Hook for long-running clients (the traversal loop): triggers GC and/or
  /// sifting according to the configured thresholds.
  void maybe_reorder() {
    assert(op_depth_ == 0);
    if (maintenance_fenced()) return;  // deferred to the next unfenced tick
    if (live_nodes_ > gc_threshold_) {
      gc();
      gc_threshold_ = std::max(gc_threshold_, live_nodes_ * 2);
    }
    if (reorder_threshold_ != 0 && live_nodes_ > reorder_threshold_) {
      reorder_sift();
      reorder_threshold_ = std::max(reorder_threshold_, live_nodes_ * 2);
    }
  }

  // ---- client memo (keyed fixpoint results) ------------------------------
  //
  // A small exact memo table for *set-level* results that must survive GC
  // and reordering — unlike the lossy computed-op cache, the kernel holds a
  // reference on both the key and the result node, so they stay live
  // (GC-safe) and keep their identity across sifting (reorder-safe). The
  // saturation traversal uses one slot per saturation level to memoize
  // "this input set, saturated at this level".
  //
  // Slots namespace the keys: each client structure reserves a fresh range
  // with memo_reserve so two structures (e.g. a rebuilt RelationPartition)
  // can never read each other's entries.
  //
  // Complexity: every memo call is one hash-table operation, O(1) expected.
  // Thread-safety: one thread per manager, like all kernel state. The
  // derived manager exposes the handle-typed memo_get/memo_put over the
  // raw-id primitives here.

  /// Reserves `count` fresh memo slots; returns the first slot id.
  std::uint64_t memo_reserve(std::uint64_t count) {
    std::uint64_t first = memo_next_slot_;
    memo_next_slot_ += count;
    assert(memo_next_slot_ < (1ULL << 32) && "memo slot space exhausted");
    return first;
  }
  /// Drops every memo entry (releasing the node references it held).
  void memo_clear() {
    for (auto& [k, e] : memo_) {
      deref(e.key);
      deref(e.result);
    }
    memo_.clear();
  }
  /// Drops the entries of slots [first, first + count) — a client structure
  /// releasing its namespace on destruction, so a short-lived client can't
  /// pin its result nodes for the manager's whole lifetime.
  void memo_release(std::uint64_t first, std::uint64_t count) {
    for (auto it = memo_.begin(); it != memo_.end();) {
      std::uint64_t slot = it->first >> 32;
      if (slot >= first && slot < first + count) {
        deref(it->second.key);
        deref(it->second.result);
        it = memo_.erase(it);
      } else {
        ++it;
      }
    }
  }
  [[nodiscard]] std::size_t memo_entries() const { return memo_.size(); }

  // ---- raw node access (used by handles, import walks and tests) ---------
  [[nodiscard]] int node_var(std::uint32_t id) const {
    return static_cast<int>(nodes_[id].var);
  }
  [[nodiscard]] std::uint32_t node_low(std::uint32_t id) const {
    return nodes_[id].low;
  }
  [[nodiscard]] std::uint32_t node_high(std::uint32_t id) const {
    return nodes_[id].high;
  }
  void ref(std::uint32_t id) {
    Node& n = nodes_[id];
    if (n.ref != kRefSaturated) n.ref++;
  }
  void deref(std::uint32_t id) {
    Node& n = nodes_[id];
    if (n.ref != kRefSaturated) {
      assert(n.ref > 0);
      n.ref--;
    }
  }

 protected:
  struct Node {
    std::uint32_t var;   // variable id; kVarTerminal on terminals
    std::uint32_t low;   // else child
    std::uint32_t high;  // then child
    std::uint32_t next;  // unique-table chain / free list link
    std::uint32_t ref;   // external + internal reference count
  };
  static constexpr std::uint32_t kVarTerminal = 0xFFFFFFFFu;
  static constexpr std::uint32_t kRefSaturated = 0xFFFFFFFFu;

  struct Subtable {
    std::vector<std::uint32_t> buckets;  // heads of chains, kNil-terminated
    std::size_t count = 0;
  };

  struct CacheEntry {
    std::uint32_t op = 0xFFFFFFFFu;
    std::uint32_t a = 0, b = 0, c = 0;
    std::uint32_t result = 0;
  };

  /// RAII guard asserting that GC/reordering cannot interleave with an
  /// in-flight recursive operation.
  class OpGuard {
   public:
    explicit OpGuard(int& depth) : depth_(depth) { ++depth_; }
    ~OpGuard() { --depth_; }
    OpGuard(const OpGuard&) = delete;
    OpGuard& operator=(const OpGuard&) = delete;

   private:
    int& depth_;
  };

  DdKernel() {
    nodes_.reserve(1u << 14);
    // Terminal nodes occupy ids 0 and 1 and are permanently referenced.
    nodes_.push_back(Node{kVarTerminal, 0, 0, kNil, kRefSaturated});
    nodes_.push_back(Node{kVarTerminal, 1, 1, kNil, kRefSaturated});
    cache_.resize(1u << 16);
  }
  ~DdKernel() = default;

  [[nodiscard]] static bool is_terminal(std::uint32_t id) { return id <= 1; }
  [[nodiscard]] int level_of_node(std::uint32_t id) const {
    return var2level_[nodes_[id].var];
  }

  // ---- node construction -------------------------------------------------
  /// The hash-consing constructor: applies the derived reduction rule, then
  /// probes the unique subtable and allocates on a miss. Returned ids are
  /// unreferenced (wrap in a handle or ref() to keep them).
  std::uint32_t mk(std::uint32_t var, std::uint32_t low, std::uint32_t high) {
    std::uint32_t reduced;
    if (Derived::mk_reduce(var, low, high, reduced)) return reduced;
    Subtable& st = subtables_[var];
    std::size_t b = hash_pair(low, high, st.buckets.size());
    for (std::uint32_t id = st.buckets[b]; id != kNil; id = nodes_[id].next) {
      const Node& n = nodes_[id];
      if (n.low == low && n.high == high) return id;
    }
    std::uint32_t id = alloc_node(var, low, high);
    // Re-hash: alloc may not change buckets, but growth below might; insert
    // first, grow afterwards (grow rehashes everything).
    Node& n = nodes_[id];
    n.next = st.buckets[b];
    st.buckets[b] = id;
    st.count++;
    subtable_maybe_grow(var);
    return id;
  }

  /// mk() behind the full input-validation the snapshot loader needs: `var`
  /// must exist and must sit strictly above each non-terminal child's level
  /// (otherwise the result would not be an ordered diagram). The inputs
  /// ultimately come from an untrusted file, so violations throw
  /// std::invalid_argument — never UB. The derived make_node adds the
  /// handle-ownership check (the kernel never sees handle types).
  std::uint32_t checked_mk(int var, std::uint32_t low, std::uint32_t high) {
    if (var < 0 || var >= num_vars()) {
      throw std::invalid_argument("make_node: variable id " +
                                  std::to_string(var) + " out of range (" +
                                  std::to_string(num_vars()) + " variables)");
    }
    for (std::uint32_t child : {low, high}) {
      if (!is_terminal(child) && var2level_[var] >= level_of_node(child)) {
        throw std::invalid_argument(
            "make_node: child's level is not below variable " +
            std::to_string(var) + "'s level — not an ordered " +
            Derived::kDiagramName);
      }
    }
    return mk(static_cast<std::uint32_t>(var), low, high);
  }

  std::uint32_t alloc_node(std::uint32_t var, std::uint32_t low,
                           std::uint32_t high) {
    std::uint32_t id;
    if (free_head_ != kNil) {
      // Reusing a freed slot never grows the arena, so the cap doesn't apply.
      id = free_head_;
      free_head_ = nodes_[id].next;
    } else {
      // Growth path: without this guard the 32-bit id would silently wrap
      // past 2^32 (and id 0xFFFFFFFF would collide with kNil). Throwing here
      // is clean — nothing has been linked yet and the recursive operators
      // unwind through their RAII guards — so handles stay valid afterwards.
      if (nodes_.size() >= node_limit_) {
        throw std::length_error(
            std::string(Derived::kName) + ": node arena exhausted (" +
            std::to_string(nodes_.size()) + " slots, limit " +
            std::to_string(node_limit_) +
            "); shard the workload across managers or raise set_node_limit");
      }
      id = static_cast<std::uint32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    Node& n = nodes_[id];
    n.var = var;
    n.low = low;
    n.high = high;
    n.next = kNil;
    n.ref = 0;
    ref(low);
    ref(high);
    live_nodes_++;
    if (live_nodes_ > peak_nodes_) peak_nodes_ = live_nodes_;
    return id;
  }

  // ---- unique subtables --------------------------------------------------
  static std::size_t hash_pair(std::uint32_t low, std::uint32_t high,
                               std::size_t nbuckets) {
    std::uint64_t h = (static_cast<std::uint64_t>(low) << 32) | high;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h) & (nbuckets - 1);
  }

  void subtable_insert(std::uint32_t var, std::uint32_t id) {
    Subtable& st = subtables_[var];
    std::size_t b =
        hash_pair(nodes_[id].low, nodes_[id].high, st.buckets.size());
    nodes_[id].next = st.buckets[b];
    st.buckets[b] = id;
    st.count++;
    subtable_maybe_grow(var);
  }

  void subtable_remove(std::uint32_t var, std::uint32_t id) {
    Subtable& st = subtables_[var];
    std::size_t b =
        hash_pair(nodes_[id].low, nodes_[id].high, st.buckets.size());
    std::uint32_t* link = &st.buckets[b];
    while (*link != kNil) {
      if (*link == id) {
        *link = nodes_[id].next;
        st.count--;
        return;
      }
      link = &nodes_[*link].next;
    }
    assert(false && "node not found in its subtable");
  }

  void subtable_maybe_grow(std::uint32_t var) {
    Subtable& st = subtables_[var];
    if (st.count <= st.buckets.size() * 2) return;
    std::vector<std::uint32_t> old = std::move(st.buckets);
    st.buckets.assign(old.size() * 4, kNil);
    for (std::uint32_t head : old) {
      for (std::uint32_t id = head; id != kNil;) {
        std::uint32_t next = nodes_[id].next;
        std::size_t b =
            hash_pair(nodes_[id].low, nodes_[id].high, st.buckets.size());
        nodes_[id].next = st.buckets[b];
        st.buckets[b] = id;
        id = next;
      }
    }
  }

  // ---- computed cache ----------------------------------------------------
  // Direct-mapped and lossy: a colliding entry is simply overwritten, so a
  // miss only costs a recomputation. Ops are tagged with per-derived enum
  // values drawn from disjoint ranges (BDD 0x1xx, ZDD 0x2xx) so the two
  // instantiations can never alias an op tag, even in shared tooling.
  void cache_put(std::uint32_t op, std::uint32_t a, std::uint32_t b,
                 std::uint32_t c, std::uint32_t result) {
    std::uint64_t h = a;
    h = h * 0x9e3779b97f4a7c15ULL + b;
    h = h * 0x9e3779b97f4a7c15ULL + c;
    h = h * 0x9e3779b97f4a7c15ULL + op;
    h ^= h >> 29;
    CacheEntry& e = cache_[h & (cache_.size() - 1)];
    e.op = op;
    e.a = a;
    e.b = b;
    e.c = c;
    e.result = result;
  }

  bool cache_get(std::uint32_t op, std::uint32_t a, std::uint32_t b,
                 std::uint32_t c, std::uint32_t& result) {
    cache_lookups_++;
    std::uint64_t h = a;
    h = h * 0x9e3779b97f4a7c15ULL + b;
    h = h * 0x9e3779b97f4a7c15ULL + c;
    h = h * 0x9e3779b97f4a7c15ULL + op;
    h ^= h >> 29;
    const CacheEntry& e = cache_[h & (cache_.size() - 1)];
    if (e.op == op && e.a == a && e.b == b && e.c == c) {
      cache_hits_++;
      result = e.result;
      return true;
    }
    return false;
  }

  void cache_clear() {
    for (auto& e : cache_) e.op = 0xFFFFFFFFu;
  }

  // ---- GC helpers --------------------------------------------------------
  void deref_recursive(std::uint32_t id) {
    // Iterative cascade: decrement, and free nodes whose count reaches zero.
    std::vector<std::uint32_t> stack{id};
    while (!stack.empty()) {
      std::uint32_t cur = stack.back();
      stack.pop_back();
      Node& n = nodes_[cur];
      if (n.ref == kRefSaturated) continue;
      assert(n.ref > 0);
      if (--n.ref == 0) {
        stack.push_back(n.low);
        stack.push_back(n.high);
        subtable_remove(n.var, cur);
        free_node(cur);
      }
    }
  }

  void free_node(std::uint32_t id) {
    Node& n = nodes_[id];
    n.var = kVarTerminal;
    n.low = kNil;
    n.high = kNil;
    n.next = free_head_;
    free_head_ = id;
    assert(live_nodes_ > 0);
    live_nodes_--;
  }

  // ---- reordering helpers ------------------------------------------------
  // Swapping levels j and j+1 mutates, in place, every node of the upper
  // variable u that depends on the lower variable w:
  //
  //   f = u'·f0 + u·f1   expands on w into
  //   f = w'·(u'·f0|w=0 + u·f1|w=0) + w·(u'·f0|w=1 + u·f1|w=1)
  //
  // so the node is relabelled to w with freshly built u-children. Node
  // identity (and hence the function denoted by every live id) is preserved.
  // The same algebra holds for ZDD families with "f|w=1" read as "sets
  // containing w, with w removed": a child that does not test w contributes
  // ∅ there, which is exactly what swap_absent_high supplies. An affected
  // node has a child that tests w, so its rebuilt then-branch is never ∅ and
  // zero-suppression cannot fire on the relabelled node (asserted below via
  // mk_reduce, which also asserts e != t for BDDs).
  std::size_t swap_levels(int level) {  // swaps level and level+1
    assert(op_depth_ == 0 && "reordering must not run during an operation");
    assert(level >= 0 && level + 1 < num_vars());
    const std::uint32_t u = static_cast<std::uint32_t>(level2var_[level]);
    const std::uint32_t w = static_cast<std::uint32_t>(level2var_[level + 1]);

    // Collect the u-nodes that test w before mutating anything.
    std::vector<std::uint32_t> affected;
    for (std::uint32_t head : subtables_[u].buckets) {
      for (std::uint32_t id = head; id != kNil; id = nodes_[id].next) {
        const Node& n = nodes_[id];
        if (nodes_[n.low].var == w || nodes_[n.high].var == w) {
          affected.push_back(id);
        }
      }
    }

    for (std::uint32_t id : affected) subtable_remove(u, id);

    for (std::uint32_t id : affected) {
      std::uint32_t f0 = nodes_[id].low, f1 = nodes_[id].high;
      std::uint32_t f00 = (nodes_[f0].var == w) ? nodes_[f0].low : f0;
      std::uint32_t f01 = (nodes_[f0].var == w) ? nodes_[f0].high
                                                : Derived::swap_absent_high(f0);
      std::uint32_t f10 = (nodes_[f1].var == w) ? nodes_[f1].low : f1;
      std::uint32_t f11 = (nodes_[f1].var == w) ? nodes_[f1].high
                                                : Derived::swap_absent_high(f1);

      // mk() may grow the node arena; re-index nodes_[id] only afterwards
      // (a Node reference held across mk() would dangle on reallocation).
      std::uint32_t e = mk(u, f00, f10);  // f|w=0
      std::uint32_t t = mk(u, f01, f11);  // f|w=1
#ifndef NDEBUG
      std::uint32_t red;
      assert(!Derived::mk_reduce(w, e, t, red) &&
             "swapped node must still depend on the lower variable");
#endif

      ref(e);
      ref(t);
      Node& n = nodes_[id];
      n.var = w;
      n.low = e;
      n.high = t;
      subtable_insert(w, id);
      deref_recursive(f0);
      deref_recursive(f1);
    }

    std::swap(level2var_[level], level2var_[level + 1]);
    var2level_[u] = level + 1;
    var2level_[w] = level;
    return live_nodes_;
  }

  // Sifting (Rudell): move each variable through the whole order, keep the
  // position with the fewest live nodes.
  void sift_var(int v) {
    const int n = num_vars();
    std::size_t best = live_nodes_;
    int best_pos = var2level_[v];
    const std::size_t limit = live_nodes_ * 2 + 64;

    int p = var2level_[v];
    // Down phase: toward the bottom of the order.
    while (p < n - 1) {
      swap_levels(p);
      ++p;
      if (live_nodes_ < best) {
        best = live_nodes_;
        best_pos = p;
      }
      if (live_nodes_ > limit) break;
    }
    // Up phase: all the way to the top (abort only once past the best spot).
    while (p > 0) {
      --p;
      swap_levels(p);
      if (live_nodes_ <= best) {
        best = live_nodes_;
        best_pos = p;
      }
      if (live_nodes_ > limit && p <= best_pos) break;
    }
    // Settle at the best position.
    while (p < best_pos) {
      swap_levels(p);
      ++p;
    }
    while (p > best_pos) {
      --p;
      swap_levels(p);
    }
  }

  // ---- raw client-memo primitives ---------------------------------------
  bool memo_get_raw(std::uint64_t slot, std::uint32_t key,
                    std::uint32_t& out) const {
    auto it = memo_.find((slot << 32) | key);
    if (it == memo_.end()) return false;
    out = it->second.result;
    return true;
  }

  void memo_put_raw(std::uint64_t slot, std::uint32_t key,
                    std::uint32_t result) {
    // Reference the new pair before releasing a displaced one so an
    // overwrite with the same ids can never drop a count to zero.
    ref(key);
    ref(result);
    auto [it, inserted] =
        memo_.try_emplace((slot << 32) | key, MemoEntry{key, result});
    if (!inserted) {
      deref(it->second.key);
      deref(it->second.result);
      it->second = MemoEntry{key, result};
    }
  }

  // ---- shared inspection helpers ----------------------------------------
  /// Combined DAG size of several roots (shared nodes counted once,
  /// terminals excluded).
  std::size_t dag_size_raw(const std::vector<std::uint32_t>& roots) const {
    std::vector<char> seen(nodes_.size(), 0);
    std::vector<std::uint32_t> stack = roots;
    std::size_t count = 0;
    while (!stack.empty()) {
      std::uint32_t id = stack.back();
      stack.pop_back();
      if (is_terminal(id) || seen[id]) continue;
      seen[id] = 1;
      count++;
      stack.push_back(nodes_[id].low);
      stack.push_back(nodes_[id].high);
    }
    return count;
  }

  // ---- state -------------------------------------------------------------
  std::vector<Node> nodes_;
  std::size_t node_limit_ = kNil;  // arena slot cap; id kNil is unusable
  std::uint32_t free_head_ = kNil;
  std::size_t live_nodes_ = 0;
  std::size_t peak_nodes_ = 0;

  std::vector<Subtable> subtables_;  // indexed by variable id
  std::vector<int> var2level_;
  std::vector<int> level2var_;

  std::vector<CacheEntry> cache_;
  std::uint64_t cache_lookups_ = 0;
  std::uint64_t cache_hits_ = 0;

  // Client memo: key = (slot << 32) | node id. The kernel holds one
  // reference on the key node and one on the result node per entry; they are
  // released on clear/release/overwrite. Nothing to do at destruction — the
  // arena dies with the manager.
  struct MemoEntry {
    std::uint32_t key;
    std::uint32_t result;
  };
  std::unordered_map<std::uint64_t, MemoEntry> memo_;
  std::uint64_t memo_next_slot_ = 0;

  int op_depth_ = 0;  // asserts GC/reorder never runs mid-operation
  int maintenance_fence_ = 0;  // >0: maybe_reorder() defers GC/sifting
  std::size_t gc_threshold_ = 1u << 20;
  std::size_t reorder_threshold_ = 0;  // 0 = auto reorder disabled
  std::uint64_t gc_runs_ = 0;
  std::uint64_t reorder_runs_ = 0;
};

}  // namespace pnenc::dd
