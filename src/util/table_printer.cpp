#include "util/table_printer.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace pnenc::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void TablePrinter::add_separator() { pending_separator_ = true; }

bool TablePrinter::looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'E' || c == 'x')) {
      return false;
    }
  }
  return true;
}

std::string TablePrinter::render(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  std::ostringstream os;
  auto hline = [&] {
    os << '+';
    for (std::size_t w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      std::size_t pad = width[c] - cell.size();
      if (looks_numeric(cell)) {
        os << ' ' << std::string(pad, ' ') << cell << " |";
      } else {
        os << ' ' << cell << std::string(pad, ' ') << " |";
      }
    }
    os << '\n';
  };

  if (!title.empty()) os << title << '\n';
  hline();
  emit(header_);
  hline();
  for (const auto& row : rows_) {
    if (row.separator_before) hline();
    emit(row.cells);
  }
  hline();
  return os.str();
}

}  // namespace pnenc::util
