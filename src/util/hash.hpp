#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace pnenc::util {

// FNV-1a (64-bit), the one hash family the project uses for persistent
// digests. Three sites share these definitions: petri::structural_hash (net
// identity stamped into snapshots), snapshot::fnv1a64 (frame checksums in
// the .pnss format), and petri::Marking::hash (the explicit-state hash
// table). The exact output of the first two is an on-disk compatibility
// surface — tests/util/test_hash.cpp pins known digests so a change here
// (or a fourth hand-rolled copy drifting from these) fails loudly instead
// of silently orphaning every saved snapshot.

inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ULL;

/// Classic byte-stream FNV-1a 64.
[[nodiscard]] inline std::uint64_t fnv1a64(const unsigned char* data,
                                           std::size_t len) {
  std::uint64_t h = kFnv1aOffsetBasis;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= kFnv1aPrime;
  }
  return h;
}

/// One step of the word-wise FNV-1a variant used by Marking::hash: folds a
/// whole 64-bit word per multiply and adds a shift-xor avalanche, trading
/// the byte loop's distribution for speed on long bitset words.
[[nodiscard]] inline std::uint64_t fnv1a64_mix_word(std::uint64_t h,
                                                    std::uint64_t w) {
  h ^= w;
  h *= kFnv1aPrime;
  h ^= h >> 31;
  return h;
}

/// Streaming byte-wise FNV-1a 64 with the length-prefixed framing helpers
/// structural_hash needs (mix_str frames a string as length + bytes so
/// "ab","c" and "a","bc" cannot collide).
class Fnv1a64 {
 public:
  void mix_byte(std::uint8_t b) {
    h_ ^= b;
    h_ *= kFnv1aPrime;
  }
  /// Little-endian, fixed eight bytes — digests must not depend on host
  /// endianness.
  void mix_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void mix_str(const std::string& s) {
    mix_u64(s.size());
    for (char c : s) mix_byte(static_cast<std::uint8_t>(c));
  }
  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = kFnv1aOffsetBasis;
};

}  // namespace pnenc::util
