#include "util/stats.hpp"

#include <sstream>

namespace pnenc::util {

StatsRegistry& StatsRegistry::global() {
  static StatsRegistry instance;
  return instance;
}

std::uint64_t StatsRegistry::get(const std::string& key) const {
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second;
}

void StatsRegistry::reset() { counters_.clear(); }

std::string StatsRegistry::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : counters_) os << k << " = " << v << "\n";
  return os.str();
}

}  // namespace pnenc::util
