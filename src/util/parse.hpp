#pragma once

#include <string>

namespace pnenc::util {

/// Checked integer parsing: the whole string must be a decimal number in
/// [min_value, max_value]. std::atoi would silently turn "phil-abc" into
/// size 0 — every malformed value must be a loud error instead. Throws
/// std::runtime_error naming `what` and the accepted range. Shared by the
/// pnanalyze flag parser and the serve loop's command reader.
int parse_int_strict(const std::string& s, const std::string& what,
                     int min_value, int max_value);

}  // namespace pnenc::util
