#include "util/parse.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace pnenc::util {

int parse_int_strict(const std::string& s, const std::string& what,
                     int min_value, int max_value) {
  const char* begin = s.c_str();
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(begin, &end, 10);
  if (s.empty() || end != begin + s.size() || errno == ERANGE ||
      v < min_value || v > max_value) {
    throw std::runtime_error("invalid " + what + " '" + s + "' (expected " +
                             std::to_string(min_value) + ".." +
                             std::to_string(max_value) + ")");
  }
  return static_cast<int>(v);
}

}  // namespace pnenc::util
