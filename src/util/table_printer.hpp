#pragma once

#include <string>
#include <vector>

namespace pnenc::util {

/// Fixed-width ASCII table renderer used by the bench binaries to emit the
/// paper-style tables (Table 3, Table 4, ...). Column widths auto-fit to the
/// widest cell; numeric cells are right-aligned, text cells left-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal separator before the next row.
  void add_separator();

  /// Renders the table, including a title line when non-empty.
  [[nodiscard]] std::string render(const std::string& title = "") const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  static bool looks_numeric(const std::string& s);

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace pnenc::util
