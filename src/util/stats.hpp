#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace pnenc::util {

/// Named monotonic counters used across the library for instrumentation
/// (cache hits, GC runs, image computations, ...).
///
/// The counters are deliberately simple — a map of named uint64s — so any
/// module can bump a counter without declaring it anywhere. Benchmarks read
/// them to report secondary columns.
class StatsRegistry {
 public:
  /// Process-wide registry. Not thread-safe by design: the library's
  /// managers are single-threaded (one manager per analysis).
  static StatsRegistry& global();

  void add(const std::string& key, std::uint64_t delta = 1) {
    counters_[key] += delta;
  }
  void set(const std::string& key, std::uint64_t value) {
    counters_[key] = value;
  }
  [[nodiscard]] std::uint64_t get(const std::string& key) const;
  void reset();

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

  /// Renders all counters as "key = value" lines.
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace pnenc::util
