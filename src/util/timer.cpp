#include "util/timer.hpp"

#include <cstdio>

namespace pnenc::util {

std::string format_duration_ms(double ms) {
  char buf[64];
  if (ms < 1000.0) {
    std::snprintf(buf, sizeof buf, "%.1f ms", ms);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", ms / 1000.0);
  }
  return buf;
}

}  // namespace pnenc::util
