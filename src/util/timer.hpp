#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace pnenc::util {

/// Wall-clock stopwatch with millisecond/microsecond readouts.
///
/// Used by the benchmark harnesses to report the CPU columns of the paper's
/// tables. Starts running on construction; `restart()` resets the origin.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction or last restart().
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  [[nodiscard]] double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration in milliseconds as a human-friendly string
/// ("532 ms", "12.4 s").
std::string format_duration_ms(double ms);

}  // namespace pnenc::util
