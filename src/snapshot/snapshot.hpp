#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "symbolic/backend.hpp"

namespace pnenc::snapshot {

/// Every way a snapshot can be malformed — truncation, bit rot, a wrong
/// magic/version, a mismatched net/scheme/backend, or a payload that fails
/// structural validation — is reported as a SnapshotError with a message
/// naming the offending frame or field. The destination manager is either
/// untouched (all byte-level validation happens before any node is built)
/// or left fully usable (node construction unwinds like any failed
/// operation). Arena-cap hits during rebuild propagate as the managers'
/// usual std::length_error.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// On-disk format version this build writes and the only one it reads.
/// Versioning rule (docs/ARCHITECTURE.md): any layout change — a new or
/// reordered frame, a new META field, a different node-entry width — bumps
/// this and readers reject everything else loudly; there is no silent
/// best-effort parse of foreign versions.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Metadata recovered from a snapshot's META/VORD frames — everything
/// needed to decide reuse *before* rebuilding a single node.
struct SnapshotMeta {
  std::uint32_t version = 0;
  symbolic::BackendKind backend = symbolic::BackendKind::kBdd;
  /// petri::structural_hash of the net the reached set was computed for.
  std::uint64_t net_hash = 0;
  /// Marking-encoding scheme ("sparse"/"dense"/"improved"); empty on zdd.
  std::string scheme;
  std::uint32_t num_vars = 0;
  std::uint32_t node_count = 0;
  /// Exact marking count recorded at save time; re-verified after load, so
  /// a structurally valid but semantically wrong table cannot slip through.
  double num_markings = 0.0;
  /// The manager variable order at save time: level2var[l] = variable at
  /// level l. Installed into the destination manager on load, for both
  /// backends (pre-kernel ZDD files always recorded the identity order).
  std::vector<int> level2var;
};

/// The FNV-1a 64 digest the trailing checksum frame carries (exposed so the
/// corruption tests and the fuzzer can craft inputs with *valid* checksums
/// and exercise the structural validators behind it).
[[nodiscard]] std::uint64_t fnv1a64(const unsigned char* data,
                                    std::size_t len);

/// One frame of a snapshot byte stream: tag (FourCC), where its payload
/// lives, and how long it is. snapshot_frames walks the framing only
/// (magic, version, tag/length chain, checksum coverage — no payload
/// parsing) and throws SnapshotError on any structural violation. This is
/// the introspection surface the corruption suite and the fuzzer use to aim
/// mutations at specific frames.
struct SnapshotFrame {
  std::uint32_t tag = 0;
  std::size_t header_offset = 0;   ///< offset of the tag word
  std::size_t payload_offset = 0;  ///< offset of the first payload byte
  std::size_t payload_len = 0;
};
[[nodiscard]] std::vector<SnapshotFrame> snapshot_frames(
    const std::vector<unsigned char>& bytes);

// ---------------------------------------------------------------------------
// Byte-level encode/decode
// ---------------------------------------------------------------------------

/// Serializes the context's reached set (plus the metadata above) into the
/// framed format. Throws SnapshotError if the context has not computed a
/// reached set yet. Deterministic: the same context state produces the same
/// bytes (nodes are written level by level, deepest level first, ascending
/// node id within a level — so every child precedes its parents and the
/// loader needs zero pointer fixup).
[[nodiscard]] std::vector<unsigned char> encode_snapshot(
    symbolic::SymbolicContext& ctx);
[[nodiscard]] std::vector<unsigned char> encode_snapshot(
    symbolic::ZddContext& ctx);

/// Parses and fully validates the byte stream (framing, checksum, META and
/// VORD contents) without touching any manager. Throws SnapshotError on any
/// malformation.
[[nodiscard]] SnapshotMeta decode_meta(const std::vector<unsigned char>& bytes);

/// Rebuilds the saved diagram inside `mgr` and returns its root. Validates
/// everything decode_meta does first, then: requires mgr.num_vars() ==
/// meta.num_vars, installs the recorded variable order (the shared kernel's
/// set_var_order, on either backend), and replays the node
/// table bottom-up through make_node — each entry may reference only
/// terminals or earlier entries, every violation throws before the entry is
/// built. On any throw the manager keeps all prior handles valid and stays
/// usable (partial rebuild nodes are unreferenced and reclaimed by gc).
[[nodiscard]] bdd::Bdd decode_snapshot(const std::vector<unsigned char>& bytes,
                                       bdd::BddManager& mgr,
                                       SnapshotMeta& meta);
[[nodiscard]] zdd::Zdd decode_snapshot(const std::vector<unsigned char>& bytes,
                                       zdd::ZddManager& mgr,
                                       SnapshotMeta& meta);

// ---------------------------------------------------------------------------
// File-level API
// ---------------------------------------------------------------------------

/// Writes the context's reached set to `path`. The write is atomic at the
/// filesystem level (temp file + rename), so a crashed or concurrent writer
/// can never leave a half-written snapshot where a reader will find it.
void save_snapshot(const std::string& path, symbolic::SymbolicContext& ctx);
void save_snapshot(const std::string& path, symbolic::ZddContext& ctx);

/// Reads and validates a snapshot's metadata without rebuilding nodes.
[[nodiscard]] SnapshotMeta read_snapshot_meta(const std::string& path);

/// Full context rehydration: validates the snapshot against the context
/// (backend kind, petri::structural_hash of the net, encoding scheme,
/// variable count — a with_next_vars mismatch surfaces here), rebuilds the
/// reached set inside the context's manager under the recorded variable
/// order, re-verifies the recorded marking count, and adopts the set via
/// set_reached — after which Analyzer / CtlChecker / QueryEngine built on
/// the context answer without any traversal (the warm-start path of
/// `pnanalyze --serve`). Throws SnapshotError on any mismatch or
/// malformation, leaving the context usable and its reached set unchanged.
void load_snapshot(const std::string& path, symbolic::SymbolicContext& ctx);
void load_snapshot(const std::string& path, symbolic::ZddContext& ctx);

}  // namespace pnenc::snapshot
