#include "snapshot/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <utility>

#include "petri/net.hpp"
#include "util/hash.hpp"

namespace pnenc::snapshot {

namespace {

// ---------------------------------------------------------------------------
// Wire format (little-endian throughout)
//
//   bytes 0..3   magic "PNSS"
//   bytes 4..7   format version (kSnapshotVersion)
//   then exactly four frames, each ⟨tag u32, payload_len u64, payload⟩:
//     META  flags u32 (must be 0), backend u8, net_hash u64, num_vars u32,
//           node_count u32, root u32, marking-count double (u64 bit image),
//           scheme_len u32, scheme bytes
//     VORD  num_vars × u32 — level2var, the variable order at save time
//     NODE  node_count × ⟨var u32, low u32, high u32⟩ — the reached set's
//           DAG, one entry per non-terminal node, deepest level first.
//           Child fields are *snapshot indices*: 0 and 1 are the terminals
//           (false/true for BDDs, ∅/{∅} for ZDDs), entry i is index i+2,
//           and every child index is < i+2 — parents strictly follow their
//           children, so loading is a single forward pass with no fixup.
//     CKSM  u64 — FNV-1a 64 of every byte before this frame's tag
//   and nothing after the CKSM payload.
// ---------------------------------------------------------------------------

constexpr std::uint32_t fourcc(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24);
}

constexpr std::uint32_t kTagMeta = fourcc('M', 'E', 'T', 'A');
constexpr std::uint32_t kTagVord = fourcc('V', 'O', 'R', 'D');
constexpr std::uint32_t kTagNode = fourcc('N', 'O', 'D', 'E');
constexpr std::uint32_t kTagCksm = fourcc('C', 'K', 'S', 'M');
constexpr unsigned char kMagic[4] = {'P', 'N', 'S', 'S'};

std::string tag_name(std::uint32_t tag) {
  std::string s(4, '?');
  for (int i = 0; i < 4; ++i) {
    char c = static_cast<char>((tag >> (8 * i)) & 0xFF);
    if (c >= 0x20 && c < 0x7F) s[static_cast<std::size_t>(i)] = c;
  }
  return s;
}

std::string hex16(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(const unsigned char* p, std::size_t n) {
    buf_.insert(buf_.end(), p, p + n);
  }
  void frame(std::uint32_t tag, const Writer& payload) {
    u32(tag);
    u64(payload.buf_.size());
    buf_.insert(buf_.end(), payload.buf_.begin(), payload.buf_.end());
  }
  [[nodiscard]] const std::vector<unsigned char>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  std::vector<unsigned char> take() { return std::move(buf_); }

 private:
  std::vector<unsigned char> buf_;
};

/// Bounds-checked little-endian cursor; every overrun names what it was
/// reading, so a truncated file reports *where* it ends, not just that it
/// does.
class Reader {
 public:
  Reader(const unsigned char* p, std::size_t n) : p_(p), n_(n) {}

  std::uint8_t u8(const char* what) {
    need(1, what);
    return p_[off_++];
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p_[off_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    off_ += 4;
    return v;
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p_[off_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    off_ += 8;
    return v;
  }
  double f64(const char* what) { return std::bit_cast<double>(u64(what)); }
  std::string str(std::size_t len, const char* what) {
    need(len, what);
    std::string s(reinterpret_cast<const char*>(p_ + off_), len);
    off_ += len;
    return s;
  }
  [[nodiscard]] std::size_t offset() const { return off_; }
  [[nodiscard]] std::size_t remaining() const { return n_ - off_; }
  void need(std::size_t k, const char* what) const {
    if (n_ - off_ < k) {
      throw SnapshotError(std::string("truncated snapshot: unexpected end of "
                                      "data while reading ") +
                          what);
    }
  }

 private:
  const unsigned char* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

/// decode_meta's working form: the public meta plus the pieces node
/// rebuilding needs (root index and the located NODE payload).
struct Parsed {
  SnapshotMeta meta;
  std::uint32_t root = 0;
  std::size_t node_payload_offset = 0;
};

/// Full byte-level validation: framing, checksum, then META/VORD contents
/// and NODE sizing. No manager is touched; everything a snapshot can get
/// wrong *on its own* (as opposed to against a particular net/context) is
/// rejected here.
Parsed parse_snapshot(const std::vector<unsigned char>& bytes) {
  std::vector<SnapshotFrame> frames = snapshot_frames(bytes);

  // Checksum before content: a bit flip anywhere in the payload surfaces as
  // exactly one message, not as whichever downstream validator trips first.
  const SnapshotFrame& cksm = frames[3];
  Reader cr(bytes.data() + cksm.payload_offset, cksm.payload_len);
  std::uint64_t stored = cr.u64("CKSM digest");
  std::uint64_t actual = fnv1a64(bytes.data(), cksm.header_offset);
  if (stored != actual) {
    throw SnapshotError("snapshot checksum mismatch: file records " +
                        hex16(stored) + ", payload hashes to " +
                        hex16(actual) + " — the snapshot is corrupted");
  }

  Parsed out;
  out.meta.version = kSnapshotVersion;

  const SnapshotFrame& metaf = frames[0];
  Reader mr(bytes.data() + metaf.payload_offset, metaf.payload_len);
  std::uint32_t flags = mr.u32("META flags");
  if (flags != 0) {
    throw SnapshotError("unsupported snapshot flags 0x" + hex16(flags) +
                        " (version 1 defines none)");
  }
  std::uint8_t backend = mr.u8("META backend id");
  switch (backend) {
    case 0:
      out.meta.backend = symbolic::BackendKind::kBdd;
      break;
    case 1:
      out.meta.backend = symbolic::BackendKind::kZdd;
      break;
    default:
      throw SnapshotError("unknown backend id " + std::to_string(backend) +
                          " in META frame (0 = bdd, 1 = zdd)");
  }
  out.meta.net_hash = mr.u64("META net hash");
  out.meta.num_vars = mr.u32("META variable count");
  out.meta.node_count = mr.u32("META node count");
  out.root = mr.u32("META root index");
  out.meta.num_markings = mr.f64("META marking count");
  std::uint32_t scheme_len = mr.u32("META scheme length");
  if (scheme_len > mr.remaining()) {
    throw SnapshotError(
        "malformed META frame: scheme length " + std::to_string(scheme_len) +
        " exceeds the " + std::to_string(mr.remaining()) +
        " bytes left in the frame");
  }
  out.meta.scheme = mr.str(scheme_len, "META scheme string");
  if (mr.remaining() != 0) {
    throw SnapshotError("malformed META frame: " +
                        std::to_string(mr.remaining()) +
                        " trailing bytes after the scheme string");
  }
  if (out.root >= out.meta.node_count + 2) {
    throw SnapshotError(
        "malformed META frame: root index " + std::to_string(out.root) +
        " out of range for " + std::to_string(out.meta.node_count) +
        " nodes plus 2 terminals");
  }

  const SnapshotFrame& vord = frames[1];
  if (vord.payload_len != std::size_t{4} * out.meta.num_vars) {
    throw SnapshotError(
        "malformed VORD frame: length " + std::to_string(vord.payload_len) +
        " does not match " + std::to_string(out.meta.num_vars) +
        " variables (expected " + std::to_string(4 * out.meta.num_vars) +
        " bytes)");
  }
  Reader vr(bytes.data() + vord.payload_offset, vord.payload_len);
  out.meta.level2var.resize(out.meta.num_vars);
  std::vector<bool> seen(out.meta.num_vars, false);
  for (std::uint32_t l = 0; l < out.meta.num_vars; ++l) {
    std::uint32_t v = vr.u32("VORD entry");
    if (v >= out.meta.num_vars || seen[v]) {
      throw SnapshotError(
          "malformed VORD frame: entries are not a permutation of 0.." +
          std::to_string(out.meta.num_vars - 1) + " (offending value " +
          std::to_string(v) + " at level " + std::to_string(l) + ")");
    }
    seen[v] = true;
    out.meta.level2var[l] = static_cast<int>(v);
  }

  const SnapshotFrame& node = frames[2];
  if (node.payload_len != std::size_t{12} * out.meta.node_count) {
    throw SnapshotError(
        "malformed NODE frame: length " + std::to_string(node.payload_len) +
        " does not match " + std::to_string(out.meta.node_count) +
        " node entries (expected " +
        std::to_string(std::size_t{12} * out.meta.node_count) + " bytes)");
  }
  out.node_payload_offset = node.payload_offset;
  return out;
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Collects the non-terminal nodes under `root`, ordered deepest level
/// first and ascending by node id within a level — the write order that
/// makes every entry's children precede it, and that is a pure function of
/// the manager's node table (so identical context state encodes to
/// identical bytes). `level_of` maps a node id to its level.
template <class LevelOf, class LowOf, class HighOf>
std::vector<std::uint32_t> collect_bottom_up(std::uint32_t root, int num_levels,
                                             LevelOf level_of, LowOf low_of,
                                             HighOf high_of) {
  std::vector<std::vector<std::uint32_t>> by_level(
      static_cast<std::size_t>(num_levels));
  std::vector<std::uint32_t> stack;
  std::unordered_map<std::uint32_t, bool> visited;
  if (root > 1) stack.push_back(root);
  while (!stack.empty()) {
    std::uint32_t id = stack.back();
    stack.pop_back();
    if (visited[id]) continue;
    visited[id] = true;
    by_level[static_cast<std::size_t>(level_of(id))].push_back(id);
    for (std::uint32_t child : {low_of(id), high_of(id)}) {
      if (child > 1 && !visited[child]) stack.push_back(child);
    }
  }
  std::vector<std::uint32_t> order;
  order.reserve(visited.size());
  for (int l = num_levels - 1; l >= 0; --l) {
    auto& bucket = by_level[static_cast<std::size_t>(l)];
    std::sort(bucket.begin(), bucket.end());
    order.insert(order.end(), bucket.begin(), bucket.end());
  }
  return order;
}

template <class VarOf, class LowOf, class HighOf>
std::vector<unsigned char> encode_impl(
    symbolic::BackendKind kind, std::uint64_t net_hash,
    const std::string& scheme, int num_vars,
    const std::vector<int>& level2var, double num_markings,
    const std::vector<std::uint32_t>& order, std::uint32_t root_id,
    VarOf var_of, LowOf low_of, HighOf high_of) {
  std::unordered_map<std::uint32_t, std::uint32_t> index;
  index.reserve(order.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) index[order[i]] = i + 2;
  auto snap_index = [&](std::uint32_t id) -> std::uint32_t {
    return id <= 1 ? id : index.at(id);
  };

  Writer meta;
  meta.u32(0);  // flags
  meta.u8(kind == symbolic::BackendKind::kBdd ? 0 : 1);
  meta.u64(net_hash);
  meta.u32(static_cast<std::uint32_t>(num_vars));
  meta.u32(static_cast<std::uint32_t>(order.size()));
  meta.u32(snap_index(root_id));
  meta.f64(num_markings);
  meta.u32(static_cast<std::uint32_t>(scheme.size()));
  meta.bytes(reinterpret_cast<const unsigned char*>(scheme.data()),
             scheme.size());

  Writer vord;
  for (int l = 0; l < num_vars; ++l) {
    vord.u32(static_cast<std::uint32_t>(level2var[static_cast<std::size_t>(l)]));
  }

  Writer node;
  for (std::uint32_t id : order) {
    node.u32(static_cast<std::uint32_t>(var_of(id)));
    node.u32(snap_index(low_of(id)));
    node.u32(snap_index(high_of(id)));
  }

  Writer out;
  out.bytes(kMagic, 4);
  out.u32(kSnapshotVersion);
  out.frame(kTagMeta, meta);
  out.frame(kTagVord, vord);
  out.frame(kTagNode, node);
  Writer cksm;
  cksm.u64(fnv1a64(out.data().data(), out.size()));
  out.frame(kTagCksm, cksm);
  return out.take();
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError("cannot open snapshot file '" + path + "'");
  }
  in.seekg(0, std::ios::end);
  auto len = in.tellg();
  if (len < 0) {
    throw SnapshotError("cannot determine size of snapshot file '" + path +
                        "'");
  }
  in.seekg(0, std::ios::beg);
  std::vector<unsigned char> bytes(static_cast<std::size_t>(len));
  if (len > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), len);
  }
  if (!in) {
    throw SnapshotError("failed reading snapshot file '" + path + "'");
  }
  return bytes;
}

void write_file_atomic(const std::string& path,
                       const std::vector<unsigned char>& bytes) {
  // Temp-then-rename: a reader either sees the complete previous snapshot
  // or the complete new one, never a torn write — the property the serve
  // loop's snapshot directory relies on.
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw SnapshotError("cannot create snapshot temp file '" + tmp + "'");
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw SnapshotError("failed writing snapshot temp file '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("failed to move snapshot into place at '" + path +
                        "'");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::uint64_t fnv1a64(const unsigned char* data, std::size_t len) {
  return util::fnv1a64(data, len);
}

std::vector<SnapshotFrame> snapshot_frames(
    const std::vector<unsigned char>& bytes) {
  Reader r(bytes.data(), bytes.size());
  r.need(4, "magic");
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    throw SnapshotError(
        "not a pnenc snapshot (bad magic; expected \"PNSS\")");
  }
  r.str(4, "magic");
  std::uint32_t version = r.u32("format version");
  if (version != kSnapshotVersion) {
    throw SnapshotError("unsupported snapshot version " +
                        std::to_string(version) + " (this build reads " +
                        std::to_string(kSnapshotVersion) + ")");
  }

  constexpr std::uint32_t expected[4] = {kTagMeta, kTagVord, kTagNode,
                                         kTagCksm};
  std::vector<SnapshotFrame> frames;
  for (int i = 0; i < 4; ++i) {
    SnapshotFrame f;
    f.header_offset = r.offset();
    f.tag = r.u32("frame tag");
    if (f.tag != expected[i]) {
      throw SnapshotError("unexpected frame '" + tag_name(f.tag) +
                          "' where '" + tag_name(expected[i]) +
                          "' was required (frames must appear in the order "
                          "META, VORD, NODE, CKSM)");
    }
    std::uint64_t len = r.u64("frame length");
    if (len > r.remaining()) {
      throw SnapshotError("truncated snapshot: frame '" + tag_name(f.tag) +
                          "' declares " + std::to_string(len) +
                          " payload bytes but only " +
                          std::to_string(r.remaining()) + " remain");
    }
    f.payload_offset = r.offset();
    f.payload_len = static_cast<std::size_t>(len);
    r.str(f.payload_len, "frame payload");
    frames.push_back(f);
  }
  if (frames[3].payload_len != 8) {
    throw SnapshotError("malformed CKSM frame: payload is " +
                        std::to_string(frames[3].payload_len) +
                        " bytes (a CKSM digest is exactly 8)");
  }
  if (r.remaining() != 0) {
    throw SnapshotError("malformed snapshot: " +
                        std::to_string(r.remaining()) +
                        " trailing bytes after the CKSM frame");
  }
  return frames;
}

SnapshotMeta decode_meta(const std::vector<unsigned char>& bytes) {
  return parse_snapshot(bytes).meta;
}

std::vector<unsigned char> encode_snapshot(symbolic::SymbolicContext& ctx) {
  const bdd::Bdd& reached = ctx.reached_set();
  if (!reached.is_valid()) {
    throw SnapshotError(
        "context has no reached set to snapshot — run reachability() first");
  }
  bdd::BddManager& mgr = ctx.manager();
  std::vector<int> level2var(static_cast<std::size_t>(mgr.num_vars()));
  for (int l = 0; l < mgr.num_vars(); ++l) {
    level2var[static_cast<std::size_t>(l)] = mgr.var_at_level(l);
  }
  std::vector<std::uint32_t> order = collect_bottom_up(
      reached.id(), mgr.num_vars(),
      [&](std::uint32_t id) { return mgr.level_of_var(mgr.node_var(id)); },
      [&](std::uint32_t id) { return mgr.node_low(id); },
      [&](std::uint32_t id) { return mgr.node_high(id); });
  return encode_impl(
      symbolic::BackendKind::kBdd, petri::structural_hash(ctx.net()),
      ctx.enc().scheme, mgr.num_vars(), level2var,
      ctx.count_markings(reached), order, reached.id(),
      [&](std::uint32_t id) { return mgr.node_var(id); },
      [&](std::uint32_t id) { return mgr.node_low(id); },
      [&](std::uint32_t id) { return mgr.node_high(id); });
}

std::vector<unsigned char> encode_snapshot(symbolic::ZddContext& ctx) {
  const zdd::Zdd& reached = ctx.reached_set();
  if (!reached.is_valid()) {
    throw SnapshotError(
        "context has no reached set to snapshot — run reachability() first");
  }
  zdd::ZddManager& mgr = ctx.manager();
  // Record the live variable order, exactly like the BDD writer: the shared
  // kernel gives ZDD managers set_var_order/reorder_sift, so identity can no
  // longer be assumed (old identity-order files stay readable — the decoder
  // installs whatever VORD says).
  std::vector<int> level2var(static_cast<std::size_t>(mgr.num_vars()));
  for (int l = 0; l < mgr.num_vars(); ++l) {
    level2var[static_cast<std::size_t>(l)] = mgr.var_at_level(l);
  }
  std::vector<std::uint32_t> order = collect_bottom_up(
      reached.id(), mgr.num_vars(),
      [&](std::uint32_t id) { return mgr.level_of_var(mgr.node_var(id)); },
      [&](std::uint32_t id) { return mgr.node_low(id); },
      [&](std::uint32_t id) { return mgr.node_high(id); });
  return encode_impl(
      symbolic::BackendKind::kZdd, petri::structural_hash(ctx.net()),
      /*scheme=*/"", mgr.num_vars(), level2var, ctx.count_markings(reached),
      order, reached.id(),
      [&](std::uint32_t id) { return mgr.node_var(id); },
      [&](std::uint32_t id) { return mgr.node_low(id); },
      [&](std::uint32_t id) { return mgr.node_high(id); });
}

bdd::Bdd decode_snapshot(const std::vector<unsigned char>& bytes,
                         bdd::BddManager& mgr, SnapshotMeta& meta) {
  Parsed p = parse_snapshot(bytes);
  meta = p.meta;
  if (p.meta.backend != symbolic::BackendKind::kBdd) {
    throw SnapshotError("snapshot was written by the '" +
                        std::string(symbolic::backend_name(p.meta.backend)) +
                        "' backend and cannot load into a BddManager");
  }
  if (static_cast<int>(p.meta.num_vars) != mgr.num_vars()) {
    throw SnapshotError(
        "variable count mismatch: snapshot has " +
        std::to_string(p.meta.num_vars) + " variables, manager has " +
        std::to_string(mgr.num_vars()));
  }
  // Install the recorded order first: the table was written under it, and
  // make_node's level-ordering check assumes the destination agrees.
  mgr.set_var_order(p.meta.level2var);

  // Replay the table bottom-up. `built` holds live handles for every entry,
  // so nothing is GC-able mid-rebuild, and on a throw the vector unwinds and
  // the partial nodes become garbage for the next gc() — the manager stays
  // fully usable either way.
  std::vector<bdd::Bdd> built;
  built.reserve(p.meta.node_count + 2);
  built.push_back(mgr.bdd_false());
  built.push_back(mgr.bdd_true());
  Reader nr(bytes.data() + p.node_payload_offset,
            std::size_t{12} * p.meta.node_count);
  for (std::uint32_t i = 0; i < p.meta.node_count; ++i) {
    std::uint32_t var = nr.u32("NODE entry variable");
    std::uint32_t low = nr.u32("NODE entry low child");
    std::uint32_t high = nr.u32("NODE entry high child");
    if (low >= i + 2 || high >= i + 2) {
      throw SnapshotError("malformed NODE frame: entry " + std::to_string(i) +
                          " references a later node — the table is not "
                          "bottom-up");
    }
    if (low == high) {
      throw SnapshotError("malformed NODE frame: entry " + std::to_string(i) +
                          " has identical children — not a canonical ROBDD "
                          "node");
    }
    try {
      built.push_back(
          mgr.make_node(static_cast<int>(var), built[low], built[high]));
    } catch (const std::invalid_argument& e) {
      throw SnapshotError("malformed NODE frame: entry " + std::to_string(i) +
                          ": " + e.what());
    }
  }
  return built[p.root];
}

zdd::Zdd decode_snapshot(const std::vector<unsigned char>& bytes,
                         zdd::ZddManager& mgr, SnapshotMeta& meta) {
  Parsed p = parse_snapshot(bytes);
  meta = p.meta;
  if (p.meta.backend != symbolic::BackendKind::kZdd) {
    throw SnapshotError("snapshot was written by the '" +
                        std::string(symbolic::backend_name(p.meta.backend)) +
                        "' backend and cannot load into a ZddManager");
  }
  if (static_cast<int>(p.meta.num_vars) != mgr.num_vars()) {
    throw SnapshotError(
        "variable count mismatch: snapshot has " +
        std::to_string(p.meta.num_vars) + " variables, manager has " +
        std::to_string(mgr.num_vars()));
  }
  // Install the recorded order first, exactly as the BDD decoder does: the
  // table was written under it and make_node's level-ordering check assumes
  // the destination agrees. (Pre-kernel files always recorded the identity
  // order, which this installs as a no-op.)
  mgr.set_var_order(p.meta.level2var);

  std::vector<zdd::Zdd> built;
  built.reserve(p.meta.node_count + 2);
  built.push_back(mgr.empty());
  built.push_back(mgr.base());
  Reader nr(bytes.data() + p.node_payload_offset,
            std::size_t{12} * p.meta.node_count);
  for (std::uint32_t i = 0; i < p.meta.node_count; ++i) {
    std::uint32_t var = nr.u32("NODE entry variable");
    std::uint32_t low = nr.u32("NODE entry low child");
    std::uint32_t high = nr.u32("NODE entry high child");
    if (low >= i + 2 || high >= i + 2) {
      throw SnapshotError("malformed NODE frame: entry " + std::to_string(i) +
                          " references a later node — the table is not "
                          "bottom-up");
    }
    if (high == 0) {
      throw SnapshotError("malformed NODE frame: entry " + std::to_string(i) +
                          " has an empty high child — a canonical ZDD "
                          "zero-suppresses such nodes");
    }
    try {
      built.push_back(
          mgr.make_node(static_cast<int>(var), built[low], built[high]));
    } catch (const std::invalid_argument& e) {
      throw SnapshotError("malformed NODE frame: entry " + std::to_string(i) +
                          ": " + e.what());
    }
  }
  return built[p.root];
}

void save_snapshot(const std::string& path, symbolic::SymbolicContext& ctx) {
  write_file_atomic(path, encode_snapshot(ctx));
}

void save_snapshot(const std::string& path, symbolic::ZddContext& ctx) {
  write_file_atomic(path, encode_snapshot(ctx));
}

SnapshotMeta read_snapshot_meta(const std::string& path) {
  return decode_meta(read_file(path));
}

void load_snapshot(const std::string& path, symbolic::SymbolicContext& ctx) {
  std::vector<unsigned char> bytes = read_file(path);
  SnapshotMeta meta = decode_meta(bytes);
  if (meta.backend != symbolic::BackendKind::kBdd) {
    throw SnapshotError("snapshot '" + path + "' was written by the '" +
                        std::string(symbolic::backend_name(meta.backend)) +
                        "' backend, but this context runs 'bdd'");
  }
  std::uint64_t want = petri::structural_hash(ctx.net());
  if (meta.net_hash != want) {
    throw SnapshotError("snapshot '" + path +
                        "' was written for a different net (snapshot net "
                        "hash " + hex16(meta.net_hash) + ", this net " +
                        hex16(want) + ")");
  }
  if (meta.scheme != ctx.enc().scheme) {
    throw SnapshotError("snapshot '" + path + "' uses encoding scheme '" +
                        meta.scheme + "', but this context encodes with '" +
                        ctx.enc().scheme + "'");
  }
  if (static_cast<int>(meta.num_vars) != ctx.manager().num_vars()) {
    throw SnapshotError(
        "snapshot '" + path + "' has " + std::to_string(meta.num_vars) +
        " variables, but this context's manager has " +
        std::to_string(ctx.manager().num_vars()) +
        " (the with_next_vars option must match the saving run)");
  }
  bdd::Bdd root = decode_snapshot(bytes, ctx.manager(), meta);
  double got = ctx.count_markings(root);
  if (got != meta.num_markings) {
    throw SnapshotError(
        "snapshot '" + path + "' failed its marking-count cross-check: file "
        "records " + std::to_string(meta.num_markings) +
        " markings, the rebuilt set counts " + std::to_string(got));
  }
  ctx.set_reached(root);
}

void load_snapshot(const std::string& path, symbolic::ZddContext& ctx) {
  std::vector<unsigned char> bytes = read_file(path);
  SnapshotMeta meta = decode_meta(bytes);
  if (meta.backend != symbolic::BackendKind::kZdd) {
    throw SnapshotError("snapshot '" + path + "' was written by the '" +
                        std::string(symbolic::backend_name(meta.backend)) +
                        "' backend, but this context runs 'zdd'");
  }
  std::uint64_t want = petri::structural_hash(ctx.net());
  if (meta.net_hash != want) {
    throw SnapshotError("snapshot '" + path +
                        "' was written for a different net (snapshot net "
                        "hash " + hex16(meta.net_hash) + ", this net " +
                        hex16(want) + ")");
  }
  zdd::Zdd root = decode_snapshot(bytes, ctx.manager(), meta);
  double got = ctx.count_markings(root);
  if (got != meta.num_markings) {
    throw SnapshotError(
        "snapshot '" + path + "' failed its marking-count cross-check: file "
        "records " + std::to_string(meta.num_markings) +
        " markings, the rebuilt set counts " + std::to_string(got));
  }
  ctx.set_reached(root);
}

}  // namespace pnenc::snapshot
