#include "corpus/corpus.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "encoding/encoding.hpp"
#include "petri/net_spec.hpp"
#include "symbolic/backend.hpp"
#include "util/timer.hpp"

namespace pnenc::corpus {

namespace {

namespace fs = std::filesystem;

/// JSON string escaping (RFC 8259): quotes, backslashes, and control
/// characters. Error messages flow through here verbatim, so this is what
/// keeps a hostile filename or parser message from corrupting a row.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// "%.6g" — the same count rendering the CLI uses, locale-independent.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

struct AnalysisNumbers {
  double markings = 0.0;
  double deadlocks = 0.0;
  std::size_t peak_nodes = 0;
};

/// The per-net analysis, templated the same way the serve loop's sessions
/// are. Saturation is the decision guide's traversal on both backends.
template <class Backend>
AnalysisNumbers analyze(typename Backend::Context& ctx) {
  AnalysisNumbers out;
  auto r = ctx.reachability(symbolic::ImageMethod::kSaturation);
  out.markings = r.num_markings;
  out.peak_nodes = r.peak_live_nodes;
  out.deadlocks = ctx.count_markings(ctx.deadlocks(ctx.reached_set()));
  return out;
}

void error_row(const std::string& display_name, const std::string& message,
               std::ostream& out) {
  out << "{\"file\":\"" << json_escape(display_name)
      << "\",\"status\":\"error\",\"error\":\"" << json_escape(message)
      << "\"}\n";
}

}  // namespace

bool corpus_row(const std::string& path, const std::string& display_name,
                std::ostream& out) {
  util::Timer timer;
  try {
    petri::Net net = petri::load_net_spec(path);
    std::string problem = net.validate();
    if (!problem.empty()) {
      throw std::runtime_error("invalid net: " + problem);
    }
    symbolic::SparsityStats ss = symbolic::sparsity_stats(net);
    symbolic::BackendKind backend = symbolic::choose_backend(ss);
    AnalysisNumbers nums;
    if (backend == symbolic::BackendKind::kBdd) {
      encoding::MarkingEncoding enc = encoding::build_encoding(net, "improved");
      symbolic::SymbolicOptions sopts;
      sopts.with_next_vars = true;
      sopts.auto_reorder_threshold = 200000;
      symbolic::SymbolicContext ctx(net, enc, sopts);
      nums = analyze<symbolic::BddBackend>(ctx);
    } else {
      symbolic::ZddContext ctx(net);
      nums = analyze<symbolic::ZddBackend>(ctx);
    }
    out << "{\"file\":\"" << json_escape(display_name)
        << "\",\"status\":\"ok\",\"places\":" << net.num_places()
        << ",\"transitions\":" << net.num_transitions() << ",\"backend\":\""
        << symbolic::backend_name(backend)
        << "\",\"method\":\"saturation\",\"schedule\":\"early\",\"wall_ms\":"
        << fmt_double(timer.elapsed_ms())
        << ",\"peak_nodes\":" << nums.peak_nodes
        << ",\"markings\":" << fmt_double(nums.markings)
        << ",\"deadlocks\":" << fmt_double(nums.deadlocks) << "}\n";
    return true;
  } catch (const std::exception& e) {
    error_row(display_name, e.what(), out);
    return false;
  } catch (...) {
    error_row(display_name, "unknown failure", out);
    return false;
  }
}

int run_corpus(const std::string& dir, std::ostream& out) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    throw std::runtime_error("cannot read corpus directory " + dir + ": " +
                             ec.message());
  }
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    std::string ext = entry.path().extension().string();
    std::transform(ext.begin(), ext.end(), ext.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (ext == ".net" || ext == ".pnml") files.push_back(entry.path());
  }
  if (files.empty()) {
    throw std::runtime_error("no net files (*.net, *.pnml) in " + dir);
  }
  std::sort(files.begin(), files.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.filename().string() < b.filename().string();
            });
  int failures = 0;
  for (const fs::path& f : files) {
    if (!corpus_row(f.string(), f.filename().string(), out)) ++failures;
  }
  return failures;
}

}  // namespace pnenc::corpus
