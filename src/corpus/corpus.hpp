#pragma once

#include <iosfwd>
#include <string>

namespace pnenc::corpus {

/// The corpus harness behind `pnanalyze --corpus DIR`: runs the standard
/// decision-guide analysis (backend via symbolic::choose_backend, method
/// saturation, early schedule — the same choices the CLI and serve loop
/// make) over every net file in a directory and emits one JSON object per
/// line (JSON Lines). Row schema (docs/ARCHITECTURE.md, "Net ingestion"):
///
///   {"file":"fig1.net","status":"ok","places":7,"transitions":7,
///    "backend":"bdd","method":"saturation","schedule":"early",
///    "wall_ms":1.23,"peak_nodes":101,"markings":8,"deadlocks":0}
///   {"file":"weighted.pnml","status":"error",
///    "error":"pnml parse error at line 12: arc inscription weight 2 ..."}
///
/// Failures are isolated per net: any exception while loading, validating
/// or analyzing one file becomes that file's error row, and the sweep
/// continues — one hostile input cannot kill a corpus run.

/// Emits the row for a single net file to `out` (never throws; failures
/// become the error row). `display_name` is what the "file" field carries —
/// the corpus runner passes the bare filename so rows are machine-portable.
/// Returns true if the row is an ok row.
bool corpus_row(const std::string& path, const std::string& display_name,
                std::ostream& out);

/// Sweeps every *.net / *.pnml regular file in `dir` (sorted by filename,
/// so output order is deterministic), writing one row per net. Throws
/// std::runtime_error if the directory cannot be read or contains no net
/// files — an empty sweep is a misconfiguration, not a clean result.
/// Returns the number of error rows.
int run_corpus(const std::string& dir, std::ostream& out);

}  // namespace pnenc::corpus
